package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cnnrev/internal/jobstore"
)

// binOnce builds the revcnnd binary once per test run. Setting
// REVCNND_E2E_RACE=1 builds it with the race detector (the CI smoke does),
// at the cost of slower jobs.
var (
	binOnce sync.Once
	binPath string
	binErr  error
)

func buildBinary(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "revcnnd-e2e-")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "revcnnd")
		args := []string{"build"}
		if os.Getenv("REVCNND_E2E_RACE") == "1" {
			args = append(args, "-race")
		}
		args = append(args, "-o", binPath, ".")
		cmd := exec.Command("go", args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			binErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	t.Cleanup(func() {}) // binary dir is left for later tests in this run
	return binPath
}

// proc is one running revcnnd process.
type proc struct {
	cmd  *exec.Cmd
	addr string
	done chan error
}

var addrRE = regexp.MustCompile(`msg="revcnnd listening" addr=([^ ]+)`)

// startProc launches revcnnd with the given flags (always with -addr
// 127.0.0.1:0) and waits for its listening line to learn the bound port.
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, done: make(chan error, 1)}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if m := addrRE.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { p.done <- cmd.Wait() }()
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		<-p.done
	})
	select {
	case p.addr = <-addrc:
	case err := <-p.done:
		t.Fatalf("revcnnd exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for revcnnd to listen")
	}
	return p
}

// term sends SIGTERM and waits for a clean exit.
func (p *proc) term(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("revcnnd exit after SIGTERM: %v", err)
		}
		p.done <- nil // keep the cleanup's receive satisfied
	case <-time.After(2 * time.Minute):
		t.Fatal("revcnnd did not exit after SIGTERM")
	}
}

func (p *proc) url(path string) string { return "http://" + p.addr + path }

// submitAsync posts a simulate body with wait=false and returns the job ID.
func submitAsync(t *testing.T, p *proc, body string) string {
	t.Helper()
	resp, err := http.Post(p.url("/v1/attack/simulate?wait=false"), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit = %d (%s)", resp.StatusCode, b)
	}
	var acc struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(b, &acc); err != nil || acc.JobID == "" {
		t.Fatalf("bad accept body %q: %v", b, err)
	}
	return acc.JobID
}

// pollDone polls one job until it reaches a terminal state.
func pollDone(t *testing.T, p *proc, id string, timeout time.Duration) (state string, status int) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(p.url("/v1/jobs/" + id))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string `json:"state"`
			Status int    `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch jobstore.State(st.State) {
		case jobstore.StateDone, jobstore.StateFailed, jobstore.StateCancelled:
			return st.State, st.Status
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestMultiProcessSmoke runs a stateless frontend and a separate worker
// process against one shared store directory and pushes 20 concurrent
// async jobs through the pair.
func TestMultiProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	front := startProc(t, bin, "-role", "frontend", "-store", dir, "-queue", "32")
	worker := startProc(t, bin, "-role", "worker", "-store", dir, "-queue", "32", "-workers", "2", "-lease", "2s")

	const n = 20
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = submitAsync(t, front, fmt.Sprintf(`{"model":"lenet","seed":%d}`, i))
	}
	for _, id := range ids {
		state, status := pollDone(t, front, id, 2*time.Minute)
		if state != string(jobstore.StateDone) || status != http.StatusOK {
			t.Fatalf("job %s: state %s status %d, want done/200", id, state, status)
		}
	}

	// The worker served only observability; the frontend executed nothing.
	resp, err := http.Get(worker.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), fmt.Sprintf("revcnnd_jobs_completed_total %d", n)) {
		t.Fatalf("worker metrics missing %d completions", n)
	}

	front.term(t)
	worker.term(t)
}

// TestKillWorkerReclaim kills a worker process mid-job with SIGKILL and
// checks lease recovery: every job completes exactly once, with at least
// one job completing on a second attempt in the surviving process.
func TestKillWorkerReclaim(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	front := startProc(t, bin, "-role", "frontend", "-store", dir, "-queue", "32", "-timeout", "5m")
	w1 := startProc(t, bin, "-role", "worker", "-store", dir, "-queue", "32", "-workers", "1", "-lease", "500ms", "-timeout", "5m")
	w2 := startProc(t, bin, "-role", "worker", "-store", dir, "-queue", "32", "-workers", "1", "-lease", "500ms", "-timeout", "5m")

	// Jobs slow enough to be mid-flight when the victim dies.
	body := `{"model":"lenet","rank":{"classes":2,"per_class":6,"epochs":25,"max_candidates":1},"timeout_ms":240000}`
	const n = 4
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = submitAsync(t, front, body)
	}

	// Watch the store directly until a job is running on a known victim.
	inspect, err := jobstore.OpenFS(dir, jobstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer inspect.Close()
	victims := map[string]*proc{
		fmt.Sprintf("p%d-", w1.cmd.Process.Pid): w1,
		fmt.Sprintf("p%d-", w2.cmd.Process.Pid): w2,
	}
	var victim *proc
	deadline := time.Now().Add(time.Minute)
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("no job started running on a worker")
		}
		for _, id := range ids {
			rec, err := inspect.Fetch(id)
			if err != nil {
				t.Fatal(err)
			}
			if rec.State == jobstore.StateRunning {
				for prefix, p := range victims {
					if strings.HasPrefix(rec.Worker, prefix) {
						victim = p
					}
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	victim.cmd.Process.Kill() // SIGKILL: no drain, lease must expire

	attempts2 := 0
	for _, id := range ids {
		state, status := pollDone(t, front, id, 4*time.Minute)
		if state != string(jobstore.StateDone) || status != http.StatusOK {
			t.Fatalf("job %s: state %s status %d, want done/200", id, state, status)
		}
		rec, err := inspect.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Completions != 1 {
			t.Fatalf("job %s completed %d times, want exactly once", id, rec.Completions)
		}
		if rec.Attempt >= 2 {
			attempts2++
		}
	}
	if attempts2 == 0 {
		t.Fatal("no job was re-claimed after the worker died")
	}
	front.term(t)
}
