module cnnrev

go 1.22
