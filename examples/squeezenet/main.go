// SqueezeNet case study (paper §3.2, Figure 5 setting): the memory trace
// exposes fire modules (squeeze → parallel expand convolutions writing one
// concatenated map) and the three bypass paths (element-wise additions
// reading two distant maps), and the modular-construction assumption
// collapses the candidate space.
//
//	go run ./examples/squeezenet
package main

import (
	"fmt"
	"log"

	"cnnrev"
)

func main() {
	log.SetFlags(0)
	victim := cnnrev.SqueezeNet(1000, 1)
	victim.InitWeights(1)

	opt := cnnrev.DefaultSolverOptions()
	opt.IdenticalModules = true // the paper's modular reduction: 329 -> 9
	rep, err := cnnrev.RunStructureAttack(victim, cnnrev.DefaultAccelConfig(), opt, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("segments recovered: %d\n", len(rep.Analysis.Segments))
	bypass, concat := 0, 0
	for _, seg := range rep.Analysis.Segments {
		if seg.Kind.String() == "eltwise" {
			bypass++
		}
		for _, in := range seg.Inputs {
			if in.Adjacent {
				concat++
			}
		}
	}
	fmt.Printf("bypass paths detected: %d, concatenated reads: %d\n", bypass, concat)
	fmt.Printf("candidate structures under the identical-modules assumption: %d (paper: 9)\n", len(rep.Structures))
	fmt.Printf("victim structure recovered: %v\n", rep.TruthIndex >= 0)

	// Rebuild the stolen architecture as a trainable network (depth-scaled
	// so this demo trains nothing huge) and run an inference through it.
	clone, err := cnnrev.Materialize(rep, maxInt(rep.TruthIndex, 0), victim.Input, 10, 16)
	if err != nil {
		log.Fatal(err)
	}
	clone.InitWeights(7)
	x := make([]float32, clone.Input.Len())
	out := clone.Infer(x)
	fmt.Printf("materialized clone: %d layers, %d parameters, %d-way classifier output\n",
		len(clone.Specs), clone.TotalWeights(), len(out))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
