// End-to-end model extraction: the paper's stated objective is "a
// duplicated CNN model that has comparable accuracy to the target model".
// This example walks the full pipeline on a ConvNet victim:
//
//  1. observe one inference's memory trace → candidate structures (§3);
//
//  2. short-train every candidate on substitute data and keep the best
//     (the paper's Figures 4-5 methodology);
//
//  3. compare the extracted clone's accuracy against the victim's.
//
//     go run ./examples/extraction
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cnnrev"
	"cnnrev/internal/dataset"
	"cnnrev/internal/nn"
)

func main() {
	log.SetFlags(0)

	// The victim: a ConvNet trained on a (private) task. The adversary can
	// query it but wants the model itself.
	ds := dataset.Synthetic(4, 50, 3, 32, 32, 77)
	train, test := ds.Split(4 * 40)
	victim := cnnrev.ConvNet(4)
	victim.InitWeights(1)
	tr := nn.NewTrainer(victim)
	tr.LR = 0.05
	tr.ClipNorm = 1
	rng := rand.New(rand.NewSource(2))
	for e := 0; e < 8; e++ {
		tr.Epoch(train.X, train.Y, rng)
	}
	victimAcc := nn.Accuracy(victim, test.X, test.Y, 1)
	fmt.Printf("victim accuracy: %.2f\n", victimAcc)

	// Step 1: structure attack from one traced inference.
	rep, err := cnnrev.RunStructureAttack(victim, cnnrev.DefaultAccelConfig(), cnnrev.DefaultSolverOptions(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structure attack: %d candidates (victim structure included: %v)\n",
		len(rep.Structures), rep.TruthIndex >= 0)

	// Step 2: rank candidates by short training and keep the best.
	scores := cnnrev.RankCandidates(rep, victim.Input, cnnrev.RankConfig{
		Classes: 4, PerClass: 25, Epochs: 3, DepthDiv: 1, Seed: 5,
	})
	best := scores[0]
	fmt.Printf("best candidate after short training: #%d (acc %.2f, is victim structure: %v)\n",
		best.Index, best.Accuracy, best.IsTruth)

	// Step 3: train the stolen architecture properly and compare.
	clone, err := cnnrev.Materialize(rep, best.Index, victim.Input, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	clone.InitWeights(9)
	ct := nn.NewTrainer(clone)
	ct.LR = 0.05
	ct.ClipNorm = 1
	crng := rand.New(rand.NewSource(10))
	for e := 0; e < 8; e++ {
		ct.Epoch(train.X, train.Y, crng)
	}
	cloneAcc := nn.Accuracy(clone, test.X, test.Y, 1)
	fmt.Printf("extracted clone accuracy: %.2f (victim %.2f)\n", cloneAcc, victimAcc)
	if cloneAcc >= victimAcc-0.1 {
		fmt.Println("extraction successful: the clone matches the victim within 10 points")
	}
}
