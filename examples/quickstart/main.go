// Quickstart: steal a small CNN's structure through its memory trace.
//
// A LeNet classifier runs on a protected accelerator: its weights and
// feature maps are encrypted in DRAM, and we never see inside the chip. We
// observe only which addresses are read and written, and when. That is
// enough to recover the network's architecture.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cnnrev"
)

func main() {
	log.SetFlags(0)

	// The victim: a trained-looking LeNet behind SGX-style protection.
	victim := cnnrev.LeNet(10)
	victim.InitWeights(1)

	// The adversary triggers one inference and records the off-chip trace.
	rep, err := cnnrev.RunStructureAttack(victim, cnnrev.DefaultAccelConfig(), cnnrev.DefaultSolverOptions(), 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("observed %d bytes of encrypted off-chip traffic\n", rep.TraceBytes)
	fmt.Printf("layers found from read-after-write dependencies: %d\n", len(rep.Analysis.Segments))
	for _, seg := range rep.Analysis.Segments {
		fmt.Printf("  layer %d: filters %5d B, output %6d B, %7d cycles\n",
			seg.Index, seg.WeightsBytes, seg.OFMBytes, seg.Cycles())
	}

	fmt.Printf("\ncandidate structures consistent with the trace: %d\n", len(rep.Structures))
	if rep.TruthIndex >= 0 {
		fmt.Println("the victim's true structure is among them:")
		for _, c := range rep.Structures[rep.TruthIndex].WeightedConfigs() {
			fmt.Printf("  %s\n", c.String())
		}
	}

	// Pick the best candidate the way the paper does: short-train each one.
	fmt.Println("\nranking candidates by short training on substitute data...")
	scores := cnnrev.RankCandidates(rep, victim.Input, cnnrev.RankConfig{
		Classes: 3, PerClass: 10, Epochs: 2, DepthDiv: 1, Seed: 3, MaxCandidates: 8,
	})
	for i, s := range scores {
		mark := ""
		if s.IsTruth {
			mark = "  <-- the actual victim structure"
		}
		fmt.Printf("%2d. candidate %2d  accuracy %.2f%s\n", i+1, s.Index, s.Accuracy, mark)
	}
}
