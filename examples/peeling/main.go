// Layer peeling (extension of paper §4): once the first layer's w/b ratios
// are recovered through the zero-pruning side channel, the adversary can
// craft device inputs that plant a single non-zero pixel of dialable
// magnitude in the *second* layer's input — and rerun Algorithm 2 there.
// Repeating the construction peels a whole conv stack layer by layer,
// reducing an L-layer model to L unknown bias scalars.
//
//	go run ./examples/peeling
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cnnrev/internal/nn"
	"cnnrev/internal/weightrev"
)

func main() {
	log.SetFlags(0)

	// Victim: a 2-layer conv stack with negative biases (the regime where
	// zero pruning leaks; cf. §4's pooled-attack precondition). The first
	// layer is ladder-dominant so every channel is injectable.
	net, err := nn.New("stack", nn.Shape{C: 1, H: 16, W: 16}, []nn.LayerSpec{
		{Name: "conv0", Kind: nn.KindConv, OutC: 3, F: 3, S: 2, ReLU: true},
		{Name: "conv1", Kind: nn.KindConv, OutC: 2, F: 2, S: 1, ReLU: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	w0 := net.Params[0].W.Data
	for i := range w0 {
		w0[i] = float32(0.01 + 0.03*rng.Float64())
		if rng.Intn(2) == 0 {
			w0[i] = -w0[i]
		}
	}
	w0[(0*3+1)*3+1] = 0.5
	w0[(1*3+1)*3+1] = -0.5
	w0[(2*3+0)*3+1] = 0.5
	w0[(2*3+2)*3+1] = 0.02
	for d := 0; d < 3; d++ {
		net.Params[0].B.Data[d] = float32(-0.04 - 0.02*rng.Float64())
	}
	w1 := net.Params[1].W.Data
	for i := range w1 {
		m := 0.08 + 0.3*rng.Float64()
		if rng.Intn(2) == 0 {
			m = -m
		}
		w1[i] = float32(m)
	}
	for d := 0; d < 2; d++ {
		net.Params[1].B.Data[d] = float32(-0.02 - 0.02*rng.Float64())
	}

	oracle, err := weightrev.NewStackOracle(net)
	if err != nil {
		log.Fatal(err)
	}
	at := weightrev.NewStackAttacker(oracle, net)
	rec, err := at.Recover()
	if err != nil {
		log.Fatal(err)
	}

	b0 := net.Params[0].B.Data
	b1 := net.Params[1].B.Data
	var err0, err1 float64
	pos, nonpos := 0, 0
	for d := 0; d < 3; d++ {
		for ky := 0; ky < 3; ky++ {
			for kx := 0; kx < 3; kx++ {
				truth := float64(w0[(d*3+ky)*3+kx]) / float64(b0[d])
				err0 = math.Max(err0, math.Abs(rec.Ratios[0][d][0][ky][kx]-truth))
			}
		}
	}
	for d := 0; d < 2; d++ {
		for c := 0; c < 3; c++ {
			for ky := 0; ky < 2; ky++ {
				for kx := 0; kx < 2; kx++ {
					w := float64(w1[((d*3+c)*2+ky)*2+kx])
					if w <= 0 {
						nonpos++
						continue
					}
					pos++
					truth := w * float64(b0[c]) / float64(b1[d])
					err1 = math.Max(err1, math.Abs(rec.Ratios[1][d][c][ky][kx]-truth))
				}
			}
		}
	}
	fmt.Printf("layer 0: all 27 w/b ratios recovered, max error %.2g\n", err0)
	fmt.Printf("layer 1: %d positive weights recovered as scaled ratios (max error %.2g); %d non-positive classified\n", pos, err1, nonpos)
	fmt.Printf("the 2-layer model is now known up to 2 scalars, using %d device queries\n", rec.Queries)
}
