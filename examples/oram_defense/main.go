// ORAM defense demo (paper §5): Path ORAM obfuscates the address pattern,
// defeating the structure attack — at a two-orders-of-magnitude bandwidth
// cost, which is why the paper calls protecting CNN inference this way
// expensive.
//
//	go run ./examples/oram_defense
package main

import (
	"fmt"
	"log"

	"cnnrev"
)

func main() {
	log.SetFlags(0)
	victim := cnnrev.LeNet(10)
	victim.InitWeights(1)

	// Plain accelerator: the attack succeeds.
	rep, err := cnnrev.RunStructureAttack(victim, cnnrev.DefaultAccelConfig(), cnnrev.DefaultSolverOptions(), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without ORAM: %d candidate structures, truth recovered: %v\n",
		len(rep.Structures), rep.TruthIndex >= 0)

	// Same victim behind a Path ORAM controller.
	tr, err := cnnrev.CaptureTrace(victim, cnnrev.DefaultAccelConfig(), 2)
	if err != nil {
		log.Fatal(err)
	}
	obf, stats, err := cnnrev.ObfuscateTrace(tr, cnnrev.ORAMConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with Path ORAM (Z=4, %d levels): %d logical -> %d physical block transfers (%.0fx)\n",
		stats.Levels, stats.LogicalBlocks, stats.PhysicalBlocks, stats.Overhead())

	// The adversary sees uniformly random paths: no read-only filter
	// regions, no read-after-write layer boundaries.
	if _, err := cnnrev.RunStructureAttackOnTrace(obf, victim.Input, victim.NumClasses()); err != nil {
		fmt.Printf("structure attack on the obfuscated trace fails: %v\n", err)
	} else {
		fmt.Println("unexpected: attack still worked")
	}
}
