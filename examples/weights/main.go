// Weight recovery demo (paper §4, Figure 7): a zero-pruning accelerator
// compresses output feature maps in DRAM, so the number of write bursts
// leaks how many pixels the ReLU zeroed. Crafting inputs with a single
// live pixel and binary-searching its value recovers every weight as a
// ratio of the bias — and a tunable activation threshold then gives the
// bias itself, i.e. the exact weights.
//
//	go run ./examples/weights
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"cnnrev"
	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
	"cnnrev/internal/weightrev"
)

func main() {
	log.SetFlags(0)

	// Part 1: recover a pruned AlexNet CONV1 (a few filters for speed;
	// run cmd/weightrev for the full 96-filter Figure 7).
	victim := cnnrev.PrunedConv1(8, 0.25, 42)
	start := time.Now()
	rep, err := cnnrev.RunWeightAttack(victim, cnnrev.AccelConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AlexNet CONV1 (8 filters): recovered all w/b in %s, %d queries\n",
		time.Since(start).Round(time.Millisecond), rep.Queries)
	fmt.Printf("  max error %.2g (paper: < 2^-10), zeros detected %d/%d\n",
		rep.MaxRatioErr, rep.ZerosDetected, rep.ZerosActual)

	// Part 2: the fused-pooling variants (paper Eq. 10 and Eq. 11).
	demoPooled(nn.PoolMax, false, "Eq. 10 (max pooling)")
	demoPooled(nn.PoolAvg, true, "Eq. 11 (average pooling before activation)")

	// Part 3: full weight recovery with a tunable threshold activation.
	demoBias()
}

func demoPooled(pool nn.PoolKind, poolBeforeAct bool, label string) {
	spec := nn.LayerSpec{Name: "conv", Kind: nn.KindConv, OutC: 2, F: 3, S: 1, ReLU: true,
		Pool: pool, PoolF: 2, PoolS: 2}
	net, err := nn.New("pooled", nn.Shape{C: 1, H: 16, W: 16}, []nn.LayerSpec{spec})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := range net.Params[0].W.Data {
		m := 0.05 + 0.3*rng.Float64()
		if rng.Intn(2) == 0 {
			m = -m
		}
		net.Params[0].W.Data[i] = float32(m)
	}
	net.Params[0].B.Data[0], net.Params[0].B.Data[1] = -0.06, -0.08

	cfg := accel.Config{PoolBeforeActivation: poolBeforeAct}
	oracle, err := weightrev.NewFastOracle(net, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	at := weightrev.NewAttacker(oracle, weightrev.Geometry{
		In: net.Input, OutC: 2, F: 3, S: 1, P: 0,
		Pool: pool, PoolF: 2, PoolS: 2, PoolBeforeAct: poolBeforeAct,
	})
	r00, r10, err := at.RecoverPooledPair(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	b := float64(net.Params[0].B.Data[0])
	w00 := float64(net.Params[0].W.Data[0])
	w10 := float64(net.Params[0].W.Data[3])
	fmt.Printf("%s: w00/b = %.4f (true %.4f), w10/b = %.4f (true %.4f)\n",
		label, r00, w00/b, r10, w10/b)
}

func demoBias() {
	spec := nn.LayerSpec{Name: "conv", Kind: nn.KindConv, OutC: 1, F: 3, S: 1, ReLU: true}
	net, err := nn.New("thresh", nn.Shape{C: 1, H: 12, W: 12}, []nn.LayerSpec{spec})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := range net.Params[0].W.Data {
		net.Params[0].W.Data[i] = float32(0.1 + 0.2*rng.Float64())
	}
	trueBias := 0.0625
	net.Params[0].B.Data[0] = float32(trueBias)

	oracle, _ := weightrev.NewFastOracle(net, accel.Config{}, 0)
	at := weightrev.NewAttacker(oracle, weightrev.Geometry{In: net.Input, OutC: 1, F: 3, S: 1, P: 0})
	weights, bias, err := at.RecoverWeights(0, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for ky := 0; ky < 3; ky++ {
		for kx := 0; kx < 3; kx++ {
			e := math.Abs(weights[0][ky][kx] - float64(net.Params[0].W.Data[ky*3+kx]))
			if e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("tunable threshold: bias recovered as %.6f (true %.6f); exact weights, max error %.2g\n",
		bias, trueBias, maxErr)
}
