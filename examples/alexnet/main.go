// AlexNet case study (paper §3.2, Tables 3-4): reverse engineer the
// structure of an 8-layer AlexNet from a single traced inference.
//
//	go run ./examples/alexnet
package main

import (
	"fmt"
	"log"
	"time"

	"cnnrev"
)

func main() {
	log.SetFlags(0)
	victim := cnnrev.AlexNet(1000, 1)
	victim.InitWeights(1)

	start := time.Now()
	rep, err := cnnrev.RunStructureAttack(victim, cnnrev.DefaultAccelConfig(), cnnrev.DefaultSolverOptions(), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack time: %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("segments: %d (5 conv + 3 FC expected)\n", len(rep.Analysis.Segments))

	// The paper's Table 4: candidate configurations per layer.
	fmt.Println("\ncandidate configurations per layer (cf. paper Table 4):")
	for seg := 0; seg < len(rep.Analysis.Segments); seg++ {
		cfgs := rep.PerLayer[seg]
		fmt.Printf("  CONV/FC %d — %d candidates\n", seg+1, len(cfgs))
		for _, c := range cfgs {
			fmt.Printf("    %s\n", c.String())
		}
	}
	fmt.Printf("\nvalid combinations (cf. paper Table 3: 24): %d\n", len(rep.Structures))
	fmt.Printf("victim structure recovered: %v (candidate #%d)\n", rep.TruthIndex >= 0, rep.TruthIndex)
}
