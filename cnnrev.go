// Package cnnrev is a full reproduction of "Reverse Engineering
// Convolutional Neural Networks Through Side-channel Information Leaks"
// (Hua, Zhang and Suh, DAC 2018).
//
// It provides, built from scratch on the standard library:
//
//   - a CNN substrate (internal/tensor, internal/nn) with inference and
//     training, and the paper's four study networks (LeNet, a CIFAR
//     ConvNet, AlexNet, SqueezeNet with fire modules and bypass paths);
//   - a tile-based CNN inference accelerator simulator (internal/accel)
//     that emits the off-chip DRAM trace an SGX-style adversary observes,
//     with optional dynamic zero pruning of output feature maps;
//   - the structure reverse-engineering attack of the paper's §3
//     (internal/structrev): RAW-dependency layer segmentation, the integer
//     constraint solver of Equations (1)-(8), the execution-time filter,
//     and candidate-structure enumeration;
//   - the weight reverse-engineering attack of §4 (internal/weightrev):
//     zero-crossing binary search against the zero-pruning write-count
//     side channel, pooled variants, zero-weight detection and
//     threshold-based bias recovery;
//   - a Path ORAM defense (internal/oram) demonstrating the
//     countermeasure the paper points to; and
//   - an experiment harness (internal/experiments) regenerating every
//     table and figure of the paper's evaluation.
//
// This facade re-exports the main entry points so the examples and tools
// read naturally; the heavy lifting lives in the internal packages.
package cnnrev

import (
	"context"
	"io"
	"math/rand"

	"cnnrev/internal/accel"
	"cnnrev/internal/core"
	"cnnrev/internal/defense"
	"cnnrev/internal/experiments"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
	"cnnrev/internal/oram"
	"cnnrev/internal/structrev"
)

// Re-exported substrate types.
type (
	// Network is a CNN with learnable parameters.
	Network = nn.Network
	// Shape is a channels×height×width activation shape.
	Shape = nn.Shape
	// AccelConfig parameterizes the victim accelerator.
	AccelConfig = accel.Config
	// Dataflow selects the accelerator's data-reuse schedule.
	Dataflow = accel.Dataflow
	// DataflowClass is a detector verdict: one of the three schedules, or
	// ambiguous when the trace does not discriminate.
	DataflowClass = structrev.DataflowClass
	// DataflowDetection is the full auto-detection outcome, including
	// per-segment votes.
	DataflowDetection = structrev.DataflowDetection
	// Trace is an observed off-chip memory trace.
	Trace = memtrace.Trace
	// SolverOptions tunes the structure attack.
	SolverOptions = structrev.Options
	// Structure is one recovered candidate network structure.
	Structure = structrev.Structure
	// LayerConfig is one layer parameter hypothesis (paper Table 2).
	LayerConfig = structrev.LayerConfig
	// StructureReport is the outcome of a structure attack.
	StructureReport = core.StructureReport
	// WeightReport is the outcome of a weight attack.
	WeightReport = core.WeightReport
	// RankConfig parameterizes candidate short-training.
	RankConfig = core.RankConfig
	// CandidateScore is a ranked candidate structure.
	CandidateScore = core.CandidateScore
	// RankResult is the full outcome of a candidate ranking, including the
	// successive-halving rung schedule and epoch accounting.
	RankResult = core.RankResult
	// RungStat is one rung of a successive-halving tournament.
	RungStat = core.RungStat
	// ORAMConfig parameterizes the Path ORAM defense.
	ORAMConfig = oram.Config
	// ORAMStats reports obfuscation cost.
	ORAMStats = oram.Stats
	// DefenseConfig selects a defensive trace transform and its knobs
	// (internal/defense): dummy-traffic injection, bucket padding,
	// address re-randomization, layer fusion, or the ORAM adapter.
	DefenseConfig = defense.Config
	// DefenseStats reports a defense's measured bandwidth/latency cost.
	DefenseStats = defense.Stats
	// DefenseTransform is one defense behind the common Apply interface.
	DefenseTransform = defense.Transform
	// StructureAttackSpec selects the hostile-probe and defense extensions
	// of the §3 pipeline (corruption, tolerant analysis, defensive trace
	// transforms); the zero value reproduces the clean pipeline.
	StructureAttackSpec = core.StructureAttackSpec
)

// DefenseKinds lists the recognized defense kind names.
var DefenseKinds = defense.Kinds

// Model-zoo constructors: the paper's four study networks plus the
// beyond-paper victims (VGG-11, Network-in-Network, a mini ResNet with
// projection shortcuts). depthDiv scales channel counts (1 = paper size).
var (
	LeNet      = nn.LeNet
	ConvNet    = nn.ConvNet
	AlexNet    = nn.AlexNet
	SqueezeNet = nn.SqueezeNet
	VGG11      = nn.VGG11
	NiN        = nn.NiN
	ResNetMini = nn.ResNetMini
)

// The three accelerator dataflows (data-reuse schedules). Output
// stationary is the paper's baseline; weight and row stationary test the
// claim that the attack survives "regardless of micro-architecture details
// and data reuse strategies".
const (
	OutputStationary = accel.OutputStationary
	WeightStationary = accel.WeightStationary
	RowStationary    = accel.RowStationary
)

// ParseDataflow maps a CLI/API spelling ("os", "weight-stationary", ...)
// to a Dataflow; the empty string means output stationary.
var ParseDataflow = accel.ParseDataflow

// Quantization: post-training symmetric int8 (the numeric regime of int8
// inference accelerators; see internal/nn/quant.go).
type QuantNetwork = nn.QuantNetwork

// QuantizeNetwork calibrates and quantizes a float network to int8.
var QuantizeNetwork = nn.QuantizeNetwork

// SaveNetwork serializes a network (structure + parameters); LoadNetwork
// restores one.
func SaveNetwork(n *Network, w io.Writer) error { return n.Save(w) }

// LoadNetwork deserializes a network written by SaveNetwork.
func LoadNetwork(r io.Reader) (*Network, error) { return nn.Load(r) }

// DefaultAccelConfig returns the baseline accelerator microarchitecture.
func DefaultAccelConfig() AccelConfig { return accel.DefaultConfig() }

// DefaultSolverOptions returns the solver settings used in the paper
// reproduction runs.
func DefaultSolverOptions() SolverOptions { return structrev.DefaultOptions() }

// RunStructureAttack runs a victim once on the simulated accelerator and
// reverse engineers its structure from the trace (paper §3, Algorithm 1).
func RunStructureAttack(net *Network, cfg AccelConfig, opt SolverOptions, seed int64) (*StructureReport, error) {
	return core.RunStructureAttack(net, cfg, opt, seed)
}

// RankCandidates short-trains recovered candidates on a synthetic dataset
// and ranks them by accuracy (the paper's Figures 4-5 methodology).
func RankCandidates(rep *StructureReport, input Shape, rc RankConfig) []CandidateScore {
	return core.RankCandidates(rep, input, rc)
}

// Materialize rebuilds a trainable network from a recovered candidate.
func Materialize(rep *StructureReport, idx int, input Shape, classes, depthDiv int) (*Network, error) {
	return core.Materialize(rep.Analysis, &rep.Structures[idx], input, classes, depthDiv)
}

// RunWeightAttack recovers weight/bias ratios of a victim's first conv
// layer through the zero-pruning side channel (paper §4, Algorithm 2).
func RunWeightAttack(net *Network, cfg AccelConfig) (*WeightReport, error) {
	return core.RunWeightAttack(net, cfg)
}

// RunStructureAttackCtx is RunStructureAttack with cooperative
// cancellation: on context expiry it returns the partial report found so
// far (Partial set, structures a deterministic prefix of the full
// enumeration) alongside the context error. cmd/revcnnd serves this.
func RunStructureAttackCtx(ctx context.Context, net *Network, cfg AccelConfig, opt SolverOptions, seed int64) (*StructureReport, error) {
	return core.RunStructureAttackCtx(ctx, net, cfg, opt, seed, nil)
}

// RankCandidatesCtx is RankCandidates with cooperative cancellation at
// candidate and epoch granularity; cancelled candidates carry a NaN
// accuracy and the context error, sorted after every real score.
func RankCandidatesCtx(ctx context.Context, rep *StructureReport, input Shape, rc RankConfig) []CandidateScore {
	return core.RankCandidatesCtx(ctx, rep, input, rc)
}

// RankCandidatesResult is RankCandidatesCtx returning the full RankResult:
// scores plus the rung schedule, total epoch work, and how many candidates
// a MaxCandidates cap skipped. With RankConfig.Halving set it runs the
// successive-halving tournament instead of the flat schedule.
func RankCandidatesResult(ctx context.Context, rep *StructureReport, input Shape, rc RankConfig) *RankResult {
	return core.RankCandidatesResult(ctx, rep, input, rc)
}

// RunWeightAttackCtx is RunWeightAttack with cooperative cancellation at
// per-weight granularity.
func RunWeightAttackCtx(ctx context.Context, net *Network, cfg AccelConfig) (*WeightReport, error) {
	return core.RunWeightAttackCtx(ctx, net, cfg)
}

// RunStructureAttackOnTrace reverse engineers candidate structures directly
// from a recorded trace (e.g. one written by cmd/tracegen), given the
// adversary-known input shape and classifier width. Element size is assumed
// to be 4 bytes (float32).
func RunStructureAttackOnTrace(tr *Trace, input Shape, classes int) ([]Structure, error) {
	a, err := structrev.Analyze(tr, input.Len()*4, 4)
	if err != nil {
		return nil, err
	}
	return structrev.Solve(a, input.W, input.C, classes, structrev.DefaultOptions())
}

// DetectTraceDataflow segments a recorded trace and classifies which
// accelerator dataflow produced it from the read/write interleaving alone
// (no knowledge of the victim beyond the input shape). Element size is
// assumed to be 4 bytes (float32).
func DetectTraceDataflow(tr *Trace, input Shape) (DataflowDetection, error) {
	a, err := structrev.Analyze(tr, input.Len()*4, 4)
	if err != nil {
		return DataflowDetection{}, err
	}
	return structrev.DetectDataflow(tr, a, structrev.DetectOptions{}), nil
}

// CaptureTrace runs one inference and returns the observable trace.
func CaptureTrace(net *Network, cfg AccelConfig, seed int64) (*Trace, error) {
	cap, err := core.Capture(net, cfg, seed)
	if err != nil {
		return nil, err
	}
	return cap.Result.Trace, nil
}

// CaptureServedTrace runs n back-to-back inferences with distinct random
// inputs and returns the continuous trace a passive observer would record.
func CaptureServedTrace(net *Network, cfg AccelConfig, n int, seed int64) (*Trace, error) {
	sim, err := accel.New(net, cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float32, n)
	for i := range xs {
		xs[i] = make([]float32, net.Input.Len())
		for j := range xs[i] {
			xs[i][j] = float32(rng.NormFloat64())
		}
	}
	_, tr, err := sim.RunMany(xs)
	return tr, err
}

// AttackServedTrace analyzes a trace containing several back-to-back
// inferences (a serving accelerator observed continuously), splits it into
// inferences, and solves each slice. Element size is assumed 4 bytes.
func AttackServedTrace(tr *Trace, input Shape, classes int) ([][]Structure, error) {
	a, err := structrev.Analyze(tr, input.Len()*4, 4)
	if err != nil {
		return nil, err
	}
	var out [][]Structure
	for _, inf := range a.Inferences() {
		structures, err := structrev.Solve(inf, input.W, input.C, classes, structrev.DefaultOptions())
		if err != nil {
			return nil, err
		}
		out = append(out, structures)
	}
	return out, nil
}

// ObfuscateTrace replays a trace through Path ORAM.
func ObfuscateTrace(tr *Trace, cfg ORAMConfig) (*Trace, ORAMStats, error) {
	return oram.Obfuscate(tr, cfg)
}

// DefendTrace applies a defensive trace transform (internal/defense) to a
// captured trace and reports its measured cost. The zero config returns a
// byte-identical copy.
func DefendTrace(tr *Trace, cfg DefenseConfig) (*Trace, DefenseStats, error) {
	return defense.Apply(tr, cfg)
}

// RunStructureAttackSpec is RunStructureAttackCtx with the hostile-probe
// and defense spec: the captured trace passes through spec.Defense (the
// victim's countermeasure) and then spec.Corrupt (the probe's noise)
// before analysis.
func RunStructureAttackSpec(ctx context.Context, net *Network, cfg AccelConfig, opt SolverOptions, seed int64, spec StructureAttackSpec) (*StructureReport, error) {
	return core.RunStructureAttackSpec(ctx, net, cfg, opt, seed, spec, nil)
}

// WriteTrace serializes a trace; ReadTrace deserializes one.
func WriteTrace(tr *Trace, w io.Writer) error { return tr.Write(w) }

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return memtrace.ReadTrace(r) }

// DecodeTrace strictly decodes an in-memory trace buffer. Unlike ReadTrace
// it validates the header against the input length before allocating, and
// only accepts canonical encodings — use it for untrusted uploads.
func DecodeTrace(data []byte) (*Trace, error) { return memtrace.DecodeTrace(data) }

// PrunedConv1 builds the Figure-7 victim layer (pruned AlexNet CONV1).
var PrunedConv1 = experiments.PrunedConv1
