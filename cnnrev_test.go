package cnnrev

import (
	"bytes"
	"testing"
)

// TestPublicAPIEndToEnd walks the documented user journey: build a victim,
// capture its trace, serialize and reload it, run the structure attack on
// the raw trace, and verify the truth survives.
func TestPublicAPIEndToEnd(t *testing.T) {
	victim := LeNet(10)
	victim.InitWeights(1)

	tr, err := CaptureTrace(victim, DefaultAccelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(tr, &buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	structures, err := RunStructureAttackOnTrace(tr2, victim.Input, victim.NumClasses())
	if err != nil {
		t.Fatal(err)
	}
	if len(structures) == 0 {
		t.Fatal("no structures from round-tripped trace")
	}

	rep, err := RunStructureAttack(victim, DefaultAccelConfig(), DefaultSolverOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TruthIndex < 0 {
		t.Fatal("truth not recovered through the facade")
	}
	if len(structures) != len(rep.Structures) {
		t.Fatalf("trace path found %d structures, pipeline %d", len(structures), len(rep.Structures))
	}

	// Materialize the stolen structure and check it runs.
	clone, err := Materialize(rep, rep.TruthIndex, victim.Input, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	clone.InitWeights(3)
	if got := len(clone.Infer(make([]float32, clone.Input.Len()))); got != 10 {
		t.Fatalf("clone emits %d logits", got)
	}
}

func TestPublicAPIWeightAttack(t *testing.T) {
	victim := PrunedConv1(4, 0.25, 5)
	rep, err := RunWeightAttack(victim, AccelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRatioErr > 1.0/1024 || rep.ZeroErrors != 0 {
		t.Fatalf("weight attack degraded: %+v", rep)
	}
}

func TestPublicAPIORAM(t *testing.T) {
	victim := LeNet(10)
	victim.InitWeights(1)
	tr, err := CaptureTrace(victim, DefaultAccelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	obf, stats, err := ObfuscateTrace(tr, ORAMConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Overhead() < 10 {
		t.Fatalf("implausible ORAM overhead %v", stats.Overhead())
	}
	if _, err := RunStructureAttackOnTrace(obf, victim.Input, 10); err == nil {
		t.Fatal("attack should fail on obfuscated trace")
	}
}

func TestModelZooThroughFacade(t *testing.T) {
	for _, n := range []*Network{LeNet(10), ConvNet(10), AlexNet(10, 32), SqueezeNet(10, 32)} {
		if n.NumClasses() != 10 {
			t.Fatalf("%s: %d classes", n.Name, n.NumClasses())
		}
	}
}

func TestServedTraceAttack(t *testing.T) {
	victim := LeNet(10)
	victim.InitWeights(1)
	tr, err := CaptureServedTrace(victim, DefaultAccelConfig(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	perInf, err := AttackServedTrace(tr, victim.Input, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(perInf) != 3 {
		t.Fatalf("%d inferences, want 3", len(perInf))
	}
	for i, structures := range perInf {
		if len(structures) == 0 {
			t.Fatalf("inference %d: no candidates", i)
		}
	}
}

func TestSaveLoadNetworkFacade(t *testing.T) {
	n := ResNetMini(10, 4)
	n.InitWeights(3)
	var buf bytes.Buffer
	if err := SaveNetwork(n, &buf); err != nil {
		t.Fatal(err)
	}
	m, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, n.Input.Len())
	a, b := n.Infer(x), m.Infer(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("round trip changed inference")
		}
	}
}

func TestQuantizeNetworkFacade(t *testing.T) {
	n := LeNet(4)
	n.InitWeights(2)
	calib := [][]float32{make([]float32, n.Input.Len())}
	calib[0][5] = 1
	q, err := QuantizeNetwork(n, calib)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Infer(calib[0])); got != 4 {
		t.Fatalf("quantized logits %d", got)
	}
}

func TestTraceAttackRejectsWrongInputShape(t *testing.T) {
	victim := LeNet(10)
	victim.InitWeights(1)
	tr, err := CaptureTrace(victim, DefaultAccelConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Declaring a much larger input must fail the region matching.
	if _, err := RunStructureAttackOnTrace(tr, Shape{C: 3, H: 224, W: 224}, 10); err == nil {
		t.Fatal("expected input-shape mismatch error")
	}
}
